//! Every bundled workload ships lint-clean: the static analyzer finds no
//! uninitialized reads, divergent barriers, shared-memory races,
//! unreachable code, dead registers, or malformed reconvergence points in
//! any kernel of the paper suite.

use gpufi::isa::analysis::lint_module;
use gpufi::prelude::*;

#[test]
fn all_bundled_workloads_are_lint_clean() {
    let suite = paper_suite();
    assert_eq!(suite.len(), 12, "the paper suite has twelve workloads");
    let mut dirty = Vec::new();
    for w in &suite {
        for (kernel, finding) in lint_module(w.module()) {
            dirty.push(format!(
                "{}/{kernel}: [{}] {finding}",
                w.name(),
                finding.kind()
            ));
        }
    }
    assert!(
        dirty.is_empty(),
        "lint findings in bundled workloads:\n{}",
        dirty.join("\n")
    );
}

/// The dead-register sets the campaign prune consults must stay in bounds
/// and exclude every register the kernel actually reads.
#[test]
fn dead_register_sets_are_consistent() {
    for w in paper_suite() {
        for k in w.module().kernels() {
            let dead = gpufi::isa::analysis::dead_registers(k);
            for &r in &dead {
                assert!(
                    r < k.num_regs(),
                    "{}/{}: R{r} out of range",
                    w.name(),
                    k.name()
                );
            }
            for ins in k.instrs() {
                for src in ins.op.src_regs().into_iter().flatten() {
                    assert!(
                        !dead.contains(&src.index()),
                        "{}/{}: read register R{} marked dead",
                        w.name(),
                        k.name(),
                        src.index()
                    );
                }
            }
        }
    }
}
