//! Differential-oracle validation at workload and campaign level:
//!
//! * every paper benchmark's golden run matches the functional reference
//!   interpreter bit for bit (global memory, exit-time registers and
//!   predicates, host readouts);
//! * the divergence reporter localizes a deliberately corrupted run to
//!   the right structure, address/register and thread;
//! * an `--oracle-check` campaign fully simulates every run that early
//!   exit would classify Masked and confirms the oracle-predicted state.

use gpufi::prelude::*;
use gpufi::sim::{Gpu as SimGpu, LaunchDims};

/// Every one of the twelve paper workloads, executed in lockstep with the
/// reference interpreter: zero divergences, bit for bit.
#[test]
fn all_twelve_workloads_match_oracle_bit_for_bit() {
    let card = GpuConfig::rtx2060();
    for w in gpufi::workloads::paper_suite() {
        let mut gpu = SimGpu::new(card.clone());
        gpu.attach_oracle();
        let result = w.run(&mut gpu);
        if let Some(d) = gpu.oracle_divergence() {
            panic!("{}: {d}", w.name());
        }
        result.unwrap_or_else(|e| panic!("{}: golden run failed: {e}", w.name()));
    }
}

/// A fault flipping a store's base-address register must surface as a
/// global-memory divergence naming the orphaned byte address.
#[test]
fn divergence_reporter_localizes_global_memory_corruption() {
    let module = Module::assemble(
        ".kernel neg\n.params 1\n S2R R1, SR_TID.X\n SHL R1, R1, 2\n \
         IADD R1, R0, R1\n MOV R2, 42\n STG [R1], R2\n EXIT\n",
    )
    .unwrap();
    let mut gpu = SimGpu::new(GpuConfig::rtx2060());
    gpu.attach_oracle();
    let buf = gpu.malloc(32 * 4).unwrap();
    // Flip bit 2 of R0 (the buffer pointer, 0x1000 -> 0x1004) in one
    // thread before the first instruction issues: that thread stores into
    // its neighbour's slot, leaving its own slot unwritten in the sim.
    gpu.arm_faults(InjectionPlan::single(
        0,
        FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 5,
            reg: 0,
            bits: vec![2],
        },
    ));
    gpu.launch(
        module.kernel("neg").unwrap(),
        LaunchDims::new(1, 32),
        &[buf],
    )
    .unwrap();
    let report = gpu
        .oracle_divergence()
        .expect("corrupted store address must diverge from the oracle");
    let text = report.to_string();
    assert!(text.contains("global memory"), "wrong structure in: {text}");
    assert!(text.contains("0x0000"), "no byte address in: {text}");
    assert!(report.repro.is_some(), "launch divergences carry a repro");
}

/// A fault flipping a register that never reaches memory must surface as
/// a register-file divergence naming the register and thread.
#[test]
fn divergence_reporter_localizes_register_corruption() {
    // R1 (the second parameter) is never read or written by the kernel,
    // so the flip is invisible to memory and only the exit-time register
    // diff can catch it.
    let module = Module::assemble(
        ".kernel neg2\n.params 2\n S2R R2, SR_TID.X\n SHL R2, R2, 2\n \
         IADD R2, R0, R2\n MOV R3, 7\n STG [R2], R3\n EXIT\n",
    )
    .unwrap();
    let mut gpu = SimGpu::new(GpuConfig::rtx2060());
    gpu.attach_oracle();
    let buf = gpu.malloc(32 * 4).unwrap();
    gpu.arm_faults(InjectionPlan::single(
        0,
        FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 11,
            reg: 1,
            bits: vec![9],
        },
    ));
    gpu.launch(
        module.kernel("neg2").unwrap(),
        LaunchDims::new(1, 32),
        &[buf, 0xDEAD],
    )
    .unwrap();
    let report = gpu
        .oracle_divergence()
        .expect("corrupted dead register must diverge from the oracle");
    let text = report.to_string();
    assert!(
        text.contains("register file") && text.contains("R1"),
        "wrong structure/register in: {text}"
    );
    assert!(text.contains("thread"), "no thread in: {text}");
}

/// A fault-free lockstep run of a fault-armed GPU whose fault never
/// applies (cycle beyond the launch) stays divergence-free.
#[test]
fn clean_lockstep_run_latches_nothing() {
    let card = GpuConfig::rtx2060();
    let w = VectorAdd::new(128);
    let mut gpu = SimGpu::new(card);
    gpu.attach_oracle();
    w.run(&mut gpu).unwrap();
    assert!(gpu.oracle_divergence().is_none());
}

/// The acceptance bar for `--oracle-check`: a 100-run register-file
/// campaign across VA and GE in which every run early exit would have
/// classified Masked is fully simulated and confirmed to end in the
/// oracle-predicted state — zero mismatches — while producing records
/// identical to the optimized engine's.
#[test]
fn oracle_check_campaign_verifies_every_masked_run() {
    let card = GpuConfig::rtx2060();
    let workloads: [Box<dyn Workload>; 2] =
        [Box::new(VectorAdd::new(256)), Box::new(Gaussian::new())];
    for w in &workloads {
        let golden = profile(w.as_ref(), &card).unwrap();
        let spec = CampaignSpec::new(Structure::RegisterFile);
        let checked_cfg = CampaignConfig::new(spec.clone(), 50, 23).with_oracle_check();
        let fast_cfg = CampaignConfig::new(spec, 50, 23);
        let checked = run_campaign(w.as_ref(), &card, &checked_cfg, &golden).unwrap();
        let fast = run_campaign(w.as_ref(), &card, &fast_cfg, &golden).unwrap();
        assert_eq!(
            checked.stats.oracle_mismatches,
            0,
            "{}: early exit mispredicted a Masked run",
            w.name()
        );
        assert_eq!(checked.stats.oracle_checked, 50, "{}", w.name());
        assert!(
            checked.stats.oracle_verified > 0,
            "{}: no run exercised the early-exit probe",
            w.name()
        );
        // Bit-identical records: the validation campaign is directly
        // diffable against the optimized engine's CSV.
        assert_eq!(checked.records, fast.records, "{}", w.name());
        assert_eq!(checked.tally, fast.tally, "{}", w.name());
        assert_eq!(
            checked.stats.oracle_verified,
            fast.stats.early_exits,
            "{}: probe and engine disagree on which runs exit",
            w.name()
        );
    }
}
