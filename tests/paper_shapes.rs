//! Regression locks on the paper's qualitative findings, at small but
//! seeded campaign sizes — these are the claims EXPERIMENTS.md reports,
//! reduced to cheap assertions so a refactor cannot silently lose them.

use gpufi::prelude::*;

fn rf_campaign(bench: &str, runs: usize, seed: u64) -> Tally {
    let w = by_name(bench).unwrap();
    let card = GpuConfig::rtx2060();
    let golden = profile(w.as_ref(), &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, seed);
    run_campaign(w.as_ref(), &card, &cfg, &golden)
        .unwrap()
        .tally
}

/// Fig. 1 shape: SDC dominates the failures of a high-AVF benchmark, and
/// crashes stay a minority (demand-paged memory semantics).
#[test]
fn sdc_dominates_register_file_failures() {
    let t = rf_campaign("SRAD2", 60, 101);
    assert!(
        t.failures() > 0,
        "SRAD2 RF campaign must observe failures: {t}"
    );
    assert!(
        t.sdc >= t.crash,
        "SDC must dominate crashes (paper Fig. 1): {t}"
    );
    assert!(
        t.crash * 4 <= t.failures().max(1) * 3,
        "crashes must not dominate: {t}"
    );
}

/// Fig. 6 direction: triple-bit faults fail at least as often as
/// single-bit faults (seeded, same benchmark).
#[test]
fn triple_bit_fails_at_least_as_often() {
    let w = by_name("HS").unwrap();
    let card = GpuConfig::rtx2060();
    let golden = profile(w.as_ref(), &card).unwrap();
    let runs = 80;
    let single = run_campaign(
        w.as_ref(),
        &card,
        &CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile).bits(1), runs, 5),
        &golden,
    )
    .unwrap()
    .tally;
    let triple = run_campaign(
        w.as_ref(),
        &card,
        &CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile).bits(3), runs, 5),
        &golden,
    )
    .unwrap()
    .tally;
    // Allow statistical slack of a few runs at this sample size.
    assert!(
        triple.failures() + 5 >= single.failures(),
        "triple-bit ({}) must not fail much less than single-bit ({})",
        triple.failures(),
        single.failures()
    );
}

/// Fig. 7 shape: with equal AVFs, the 28 nm process yields much higher
/// FIT than 12 nm (raw-rate ratio ≈ 6.7×).
#[test]
fn titan_raw_rate_dominates_fit() {
    let r12 = raw_fit_per_bit(12);
    let r28 = raw_fit_per_bit(28);
    assert!((r28 / r12 - 6.67).abs() < 0.1, "ratio {}", r28 / r12);
}

/// Paper §VI.A: the campaign size justification — 3 000 runs at 99 %
/// confidence gives a margin below 2.5 %.
#[test]
fn paper_sample_size_statistics() {
    let margin = margin_of_error(0.99, 3000, u64::MAX);
    assert!(margin < 0.025, "margin {margin}");
    assert!(sample_size(0.99, margin, u64::MAX) <= 3100);
}

/// Occupancy ordering from the paper's Fig. 3 discussion: SRAD2's
/// occupancy is at least SRAD1's (same diffusion at different kernel
/// organisations).
#[test]
fn srad_occupancy_ordering() {
    let card = GpuConfig::rtx2060();
    let occ = |name: &str| {
        let w = by_name(name).unwrap();
        let golden = profile(w.as_ref(), &card).unwrap();
        let total: u64 = golden.app.total_cycles();
        golden
            .app
            .static_kernels()
            .iter()
            .map(|k| golden.app.occupancy_of(k) * golden.app.cycles_of(k) as f64)
            .sum::<f64>()
            / total as f64
    };
    let (s1, s2) = (occ("SRAD1"), occ("SRAD2"));
    assert!(
        s2 >= s1 * 0.9,
        "SRAD2 occupancy ({s2:.3}) should be at least SRAD1's ({s1:.3})"
    );
}

/// Whole-application campaigns draw from every kernel's windows: a BP
/// register-file campaign must be able to reach both kernels.
#[test]
fn whole_app_campaigns_cover_all_kernels() {
    let w = by_name("BP").unwrap();
    let card = GpuConfig::rtx2060();
    let golden = profile(w.as_ref(), &card).unwrap();
    assert_eq!(golden.app.static_kernels().len(), 2);
    // Both kernels have non-empty windows the generator can sample.
    for k in golden.app.static_kernels() {
        let windows = golden.windows(Some(&k));
        assert!(!windows.is_empty());
        assert!(windows.iter().all(|win| win.end > win.start));
    }
}
