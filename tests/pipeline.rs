//! Cross-crate integration tests: the full profile → inject → classify →
//! aggregate pipeline through the public façade.

use gpufi::prelude::*;

#[test]
fn golden_profile_captures_windows_and_spaces() {
    let w = Srad1::default();
    let golden = profile(&w, &GpuConfig::rtx2060()).unwrap();
    // SRAD1 launches three static kernels, twice each (two iterations).
    assert_eq!(golden.app.static_kernels().len(), 3);
    for k in golden.app.static_kernels() {
        assert_eq!(golden.app.windows_of(&k).len(), 2, "kernel {k}");
        assert!(golden.fault_spaces.contains_key(&k));
    }
    assert!(golden.total_cycles() > 0);
}

#[test]
fn campaign_is_deterministic_across_thread_counts() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let serial = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec.clone(), 10, 3).with_threads(1),
        &golden,
    )
    .unwrap();
    let parallel = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec, 10, 3).with_threads(4),
        &golden,
    )
    .unwrap();
    assert_eq!(serial.records, parallel.records);
    assert_eq!(serial.tally, parallel.tally);
}

#[test]
fn different_seeds_differ() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let a = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec.clone(), 12, 1),
        &golden,
    )
    .unwrap();
    let b = run_campaign(&w, &card, &CampaignConfig::new(spec, 12, 2), &golden).unwrap();
    assert_ne!(a.records, b.records, "seeds must drive the campaign");
}

#[test]
fn titan_rejects_l1d_campaigns() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::gtx_titan();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L1Data), 4, 1);
    let err = run_campaign(&w, &card, &cfg, &golden).unwrap_err();
    assert!(err.to_string().contains("L1 data cache"), "{err}");
}

#[test]
fn kernel_scoped_campaign_validates_kernel_name() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L2), 4, 1).for_kernel("nope");
    assert!(run_campaign(&w, &card, &cfg, &golden).is_err());
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L2), 4, 1).for_kernel("vec_add");
    assert!(run_campaign(&w, &card, &cfg, &golden).is_ok());
}

#[test]
fn masked_dominates_l2_for_tiny_footprints() {
    // VA touches ~48 KB of a 3 MB L2: almost every random L2 bit lands on
    // an invalid or dead line, so the failure ratio must be small.
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L2), 20, 5);
    let r = run_campaign(&w, &card, &cfg, &golden).unwrap();
    assert!(
        r.tally.failure_ratio() < 0.5,
        "L2 failure ratio suspiciously high: {}",
        r.tally
    );
}

#[test]
fn analysis_invariants_hold() {
    let w = ScalarProd::new(8);
    let card = GpuConfig::rtx2060();
    let cfg = AnalysisConfig::new(6, 11);
    let analysis = analyze(&w, &card, &cfg).unwrap();
    assert!(
        (0.0..=1.0).contains(&analysis.wavf),
        "wavf {}",
        analysis.wavf
    );
    assert!((0.0..=1.0).contains(&analysis.occupancy));
    assert!(analysis.fit >= 0.0);
    assert_eq!(analysis.structures.len(), 5);
    let share_sum: f64 = analysis.avf_shares().iter().map(|(_, s)| s).sum();
    assert!(
        analysis.avf_shares().is_empty() || (share_sum - 1.0).abs() < 1e-9,
        "shares sum to {share_sum}"
    );
    // Per-structure derated rates are probabilities.
    for s in &analysis.structures {
        assert!(
            (0.0..=1.0).contains(&s.rates.failure_rate()),
            "{:?}",
            s.rates
        );
    }
}

#[test]
fn warp_scope_campaigns_run() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile)
        .warp_scope()
        .bits(2);
    let r = run_campaign(&w, &card, &CampaignConfig::new(spec, 10, 4), &golden).unwrap();
    assert_eq!(r.tally.total(), 10);
    // Warp-scope faults hit 32 threads; they should fail at least as often
    // as they mask entirely... statistically, so just require they applied.
    assert!(r.records.iter().any(|rec| rec.applied));
}

#[test]
fn multi_structure_plan_applies_both() {
    // Build a plan by hand that hits register file and L2 in the same run
    // (Table IV: "different hardware structures simultaneously").
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cycle = golden.total_cycles() / 2;
    let plan = InjectionPlan {
        faults: vec![
            gpufi_sim::PlannedFault {
                cycle,
                target: FaultTarget::RegisterFile {
                    scope: Scope::Thread,
                    entry_lot: 1,
                    reg: 0,
                    bits: vec![3],
                },
            },
            gpufi_sim::PlannedFault {
                cycle,
                target: FaultTarget::L2 { bits: vec![1000] },
            },
        ],
    };
    let mut gpu = Gpu::new(card);
    gpu.arm_faults(plan);
    gpu.set_watchdog(golden.total_cycles() * 2);
    let _ = w.run(&mut gpu);
    assert_eq!(gpu.injection_records().len(), 2);
}

#[test]
fn every_benchmark_profiles_on_every_card() {
    for card in GpuConfig::paper_cards() {
        for w in paper_suite() {
            let golden = profile(w.as_ref(), &card)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), card.name));
            assert!(golden.total_cycles() > 0);
            assert!(!golden.output.is_empty());
        }
    }
}

#[test]
fn ace_estimate_is_a_sane_probability() {
    let w = HotSpot::default();
    let golden = profile(&w, &GpuConfig::rtx2060()).unwrap();
    for l in &golden.app.launches {
        let ace = l.ace_rf_avf();
        assert!((0.0..=1.0).contains(&ace), "ace {ace}");
        assert!(ace > 0.0, "a real kernel has live registers");
        assert!(l.thread_cycles > 0);
    }
}

#[test]
fn ace_overestimates_injection_for_most_benchmarks() {
    // The paper's §II.C claim, as a regression test on two benchmarks with
    // fixed seeds.
    let card = GpuConfig::rtx2060();
    for name in ["VA", "HS"] {
        let w = by_name(name).unwrap();
        let golden = profile(w.as_ref(), &card).unwrap();
        let ace_cycles: u64 = golden.app.launches.iter().map(|l| l.ace_reg_cycles).sum();
        let total: f64 = golden
            .app
            .launches
            .iter()
            .map(|l| l.thread_cycles as f64 * f64::from(l.regs_per_thread))
            .sum();
        let ace = ace_cycles as f64 / total;
        let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 40, 13);
        let fr = run_campaign(w.as_ref(), &card, &cfg, &golden)
            .unwrap()
            .tally
            .failure_ratio();
        assert!(
            ace >= fr * 0.8,
            "{name}: ACE ({ace:.3}) should not be far below injection ({fr:.3})"
        );
    }
}

#[test]
fn round_robin_scheduler_is_functionally_equivalent() {
    // Scheduling must never change architectural results, only timing.
    let w = ScalarProd::new(8);
    let gto = profile(&w, &GpuConfig::rtx2060()).unwrap();
    let mut card = GpuConfig::rtx2060();
    card.scheduler = gpufi_sim::SchedulerPolicy::RoundRobin;
    let rr = profile(&w, &card).unwrap();
    assert_eq!(gto.output, rr.output, "same results under any scheduler");
}

#[test]
fn custom_config_chip_runs_campaigns() {
    let card = GpuConfig::from_config_text(
        "base = rtx2060\nname = Mini\nnum_sms = 4\nl1d = 32768:4:128\nscheduler = rr\n",
    )
    .unwrap();
    let w = VectorAdd::new(512);
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L1Data), 10, 3);
    let r = run_campaign(&w, &card, &cfg, &golden).unwrap();
    assert_eq!(r.tally.total(), 10);
}

#[test]
fn l1_const_campaign_runs_via_structure_all() {
    // The constant-cache extension participates in the generic campaign
    // machinery like any paper structure.
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::L1Const), 10, 3);
    let r = run_campaign(&w, &card, &cfg, &golden).unwrap();
    // VA never touches constant memory: every line is invalid, all masked.
    assert_eq!(r.tally.masked, 10);
}

#[test]
fn csv_exports_are_well_formed() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 6, 3);
    let r = run_campaign(&w, &card, &cfg, &golden).unwrap();
    let csv = gpufi::core::campaign_csv(&r);
    assert_eq!(csv.lines().count(), 7);
    assert!(csv.starts_with("run,effect,cycles,applied"));
    let a = analyze(&w, &card, &AnalysisConfig::new(4, 9)).unwrap();
    let csv = gpufi::core::analysis_csv(&a);
    assert!(csv.contains("register file"));
    assert!(csv.trim_end().lines().last().unwrap().contains("TOTAL"));
}
