//! Validation of ACE-style static dead-register pruning: pre-classifying
//! a register-file run as Masked because its faults land only in
//! registers no reachable instruction ever reads must never change what
//! the campaign concludes — only whether the run is simulated at all.

use gpufi::prelude::*;

/// Pruned and fully simulated campaigns must agree run for run — same
/// effect, same cycle count, same tally — across ≥200 register-file runs
/// of two workloads with statically dead registers (`scalar_prod` never
/// touches R3; `nw_diagonal` skips R5/R13/R14).  Only the `detail` and
/// `early_exit` markers may differ: a pruned run records `static_dead`
/// where the full engine records a fault-lifetime early exit.
#[test]
fn static_prune_matches_full_simulation() {
    let card = GpuConfig::rtx2060();
    let workloads: [Box<dyn Workload>; 2] = [
        Box::new(ScalarProd::new(8)),
        Box::new(NeedlemanWunsch::default()),
    ];
    for w in &workloads {
        let golden = profile(w.as_ref(), &card).unwrap();
        let spec = CampaignSpec::new(Structure::RegisterFile);
        let pruned_cfg = CampaignConfig::new(spec.clone(), 200, 23);
        let full_cfg = CampaignConfig::new(spec, 200, 23).no_static_prune();
        let pruned = run_campaign(w.as_ref(), &card, &pruned_cfg, &golden).unwrap();
        let full = run_campaign(w.as_ref(), &card, &full_cfg, &golden).unwrap();
        assert_eq!(pruned.tally, full.tally, "{}: tallies diverge", w.name());
        for (i, (a, b)) in pruned.records.iter().zip(&full.records).enumerate() {
            assert_eq!(a.effect, b.effect, "{} run {i}: effect", w.name());
            assert_eq!(a.cycles, b.cycles, "{} run {i}: cycles", w.name());
        }
        // The validation mode never prunes; the analyzer should prune at
        // least some dead-register draws in 200 runs.
        assert_eq!(full.stats.static_pruned, 0);
        assert!(
            pruned.stats.static_pruned > 0,
            "{}: no run was statically pruned in 200",
            w.name()
        );
        assert!(
            (pruned.stats.static_pruned_rate - pruned.stats.static_pruned as f64 / 200.0).abs()
                < 1e-12
        );
        // Every pruned run is Masked at the golden cycle count by
        // construction, and the full engine must agree on each of them.
        for (i, r) in pruned.records.iter().enumerate() {
            if r.detail == RunDetail::StaticDead {
                assert_eq!(r.effect, FaultEffect::Masked, "run {i}");
                assert_eq!(r.cycles, golden.total_cycles(), "run {i}");
                assert!(!r.early_exit, "run {i}: pruned runs are not early exits");
            }
        }
    }
}

/// The prune composes with `--no-early-exit`: even when the full-engine
/// baseline simulates every non-pruned run to completion, the per-run
/// verdicts still match the doubly-validating cold path.
#[test]
fn static_prune_matches_full_simulation_without_early_exit() {
    let w = ScalarProd::new(8);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let pruned_cfg = CampaignConfig::new(spec.clone(), 60, 9).no_early_exit();
    let full_cfg = CampaignConfig::new(spec, 60, 9)
        .no_early_exit()
        .no_static_prune();
    let pruned = run_campaign(&w, &card, &pruned_cfg, &golden).unwrap();
    let full = run_campaign(&w, &card, &full_cfg, &golden).unwrap();
    assert_eq!(pruned.tally, full.tally);
    assert!(pruned.stats.static_pruned > 0);
    for (i, (a, b)) in pruned.records.iter().zip(&full.records).enumerate() {
        assert_eq!(a.effect, b.effect, "run {i}: effect");
        assert_eq!(a.cycles, b.cycles, "run {i}: cycles");
    }
}

/// `--oracle-check` bypasses the prune entirely — it exists to validate
/// exactly such shortcuts, so every run must be fully simulated under it.
#[test]
fn oracle_check_bypasses_static_prune() {
    let w = ScalarProd::new(8);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg =
        CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 40, 23).with_oracle_check();
    let result = run_campaign(&w, &card, &cfg, &golden).unwrap();
    assert_eq!(result.stats.static_pruned, 0);
    assert_eq!(result.stats.oracle_mismatches, 0);
    assert_eq!(result.stats.oracle_checked, 40);
}
