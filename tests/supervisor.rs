//! Validation of the fault-tolerant campaign supervisor: per-run panic
//! isolation with retry-once quarantine, and the crash-safe run journal
//! with bit-identical resumption.

use gpufi::core::campaign_csv;
use gpufi::prelude::*;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("gpufi-supervisor-it");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

/// A journaled campaign interrupted at *any* point — including a torn
/// final line, the classic SIGKILL-mid-write artifact — must resume to a
/// CSV and tally byte-identical to the uninterrupted run, on one worker
/// thread or four.
#[test]
fn resume_is_bit_identical_across_truncations_and_threads() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let runs = 200;

    let base_cfg = CampaignConfig::new(spec.clone(), runs, 17).with_threads(1);
    let base = run_campaign(&w, &card, &base_cfg, &golden).unwrap();
    let base_csv = campaign_csv(&base);

    // Journaling itself must not perturb any record.
    let path = tmp("resume.journal.jsonl");
    let journal_cfg = base_cfg.clone().with_journal(path.clone());
    let full = run_campaign(&w, &card, &journal_cfg, &golden).unwrap();
    assert_eq!(campaign_csv(&full), base_csv, "journaling changed records");
    assert_eq!(full.stats.resumed, 0);
    assert!(full.stats.journal_bytes > 0, "no journal bytes accounted");

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), runs + 1, "header + one line per run");

    // Truncation points: header only, a short prefix, most of the file,
    // and the complete journal (resume with nothing left to do).
    let prefixes: Vec<String> = vec![
        lines[..1].concat(),
        lines[..51].concat(),
        lines[..181].concat(),
        text.clone(),
    ];
    for (pi, prefix) in prefixes.iter().enumerate() {
        // Clean cut and torn cut (half of the following line survives).
        let mut variants = vec![prefix.clone()];
        if prefix.len() < text.len() {
            let torn = &text[..prefix.len() + 20];
            assert!(!torn.ends_with('\n'));
            variants.push(torn.to_string());
        }
        for (vi, variant) in variants.iter().enumerate() {
            for threads in [1usize, 4] {
                std::fs::write(&path, variant).unwrap();
                let cfg = journal_cfg.clone().with_resume().with_threads(threads);
                let res = run_campaign(&w, &card, &cfg, &golden).unwrap();
                let tag = format!("prefix {pi}, variant {vi}, {threads} thread(s)");
                assert_eq!(campaign_csv(&res), base_csv, "{tag}: CSV diverged");
                assert_eq!(res.tally, base.tally, "{tag}: tally diverged");
                // Complete record lines only: the torn fragment is discarded.
                let expect_resumed = variant
                    .split_inclusive('\n')
                    .filter(|c| c.ends_with('\n'))
                    .count()
                    .saturating_sub(1);
                assert_eq!(res.stats.resumed, expect_resumed, "{tag}: resumed count");
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A panic on the first attempt of one run must be quarantined and
/// retried; when the retry succeeds (a transient failure) the campaign's
/// records are indistinguishable from a clean campaign, and the stats
/// report exactly one caught panic and one retry.
#[test]
fn transient_panic_is_retried_and_leaves_no_trace_in_records() {
    let w = VectorAdd::new(128);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg =
        CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 40, 9).with_threads(4);
    let clean = run_campaign(&w, &card, &cfg, &golden).unwrap();

    let hook = |run: usize, attempt: u32| {
        if run == 5 && attempt == 0 {
            panic!("transient supervisor-test failure");
        }
    };
    let res = run_campaign_with_hook(&w, &card, &cfg, &golden, Some(&hook)).unwrap();
    assert_eq!(campaign_csv(&res), campaign_csv(&clean));
    assert_eq!(res.stats.panics, 1);
    assert_eq!(res.stats.retries, 1);
    assert_eq!(clean.stats.panics, 0);
    assert_eq!(clean.stats.retries, 0);
}

/// A deterministic poison run — one that panics on both attempts — must
/// not take down the campaign: every sibling run completes and classifies
/// exactly as in a clean campaign, while the poison run is recorded as
/// Crash with `detail=sim_panic`.  The poison verdict must also round-trip
/// through the journal so a resumed campaign reproduces it bit for bit.
#[test]
fn poison_run_is_crash_sim_panic_and_survives_resume() {
    let w = VectorAdd::new(128);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let path = tmp("poison.journal.jsonl");
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 40, 9)
        .with_threads(4)
        .with_journal(path.clone());
    let clean = run_campaign(&w, &card, &cfg, &golden).unwrap();

    let poison = 7usize;
    let hook = move |run: usize, _attempt: u32| {
        if run == poison {
            panic!("deterministic poison run");
        }
    };
    let res = run_campaign_with_hook(&w, &card, &cfg, &golden, Some(&hook)).unwrap();
    assert_eq!(res.records.len(), 40, "a run went missing");
    let r = &res.records[poison];
    assert_eq!(r.effect, FaultEffect::Crash);
    assert_eq!(r.detail, RunDetail::SimPanic);
    assert_eq!(r.cycles, 0);
    // Two panicking attempts (first + retry), one quarantined run.
    assert_eq!(res.stats.panics, 2);
    assert_eq!(res.stats.retries, 1);
    for (i, (a, b)) in res.records.iter().zip(&clean.records).enumerate() {
        if i != poison {
            assert_eq!(a, b, "sibling run {i} was perturbed by the poison run");
        }
    }

    // The journal now holds the poison verdict; a resume with every run
    // already recorded must reproduce the poisoned CSV without invoking
    // the hook (or the simulator) at all.
    let resumed_cfg = cfg.clone().with_resume();
    let resumed = run_campaign(&w, &card, &resumed_cfg, &golden).unwrap();
    assert_eq!(campaign_csv(&resumed), campaign_csv(&res));
    assert_eq!(resumed.stats.resumed, 40);
    std::fs::remove_file(&path).ok();
}

/// Resuming from a journal written by a *different* campaign (here: a
/// different seed) must fail loudly instead of splicing foreign records.
#[test]
fn resume_rejects_a_foreign_journal() {
    let w = VectorAdd::new(128);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let path = tmp("foreign.journal.jsonl");
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let cfg_a = CampaignConfig::new(spec.clone(), 20, 1).with_journal(path.clone());
    run_campaign(&w, &card, &cfg_a, &golden).unwrap();

    let cfg_b = CampaignConfig::new(spec, 20, 2)
        .with_journal(path.clone())
        .with_resume();
    match run_campaign(&w, &card, &cfg_b, &golden) {
        Err(CampaignError::Journal(msg)) => {
            assert!(msg.contains("different campaign"), "{msg}");
        }
        other => panic!("expected a journal rejection, got {other:?}"),
    }
    // Without --resume the same path is truncated and rewritten instead.
    let cfg_c = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 20, 2)
        .with_journal(path.clone());
    run_campaign(&w, &card, &cfg_c, &golden).unwrap();
    std::fs::remove_file(&path).ok();
}

/// Arming the per-run wall-clock watchdog with a generous limit must not
/// change any classification; the watchdog only exists to bound runaway
/// runs (its firing path is covered at the simulator layer).
#[test]
fn generous_wall_watchdog_does_not_perturb_classification() {
    let w = VectorAdd::new(128);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let plain = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec.clone(), 30, 3),
        &golden,
    )
    .unwrap();
    let guarded = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec, 30, 3).with_max_run_ms(3_600_000),
        &golden,
    )
    .unwrap();
    assert_eq!(campaign_csv(&guarded), campaign_csv(&plain));
    assert!(guarded
        .records
        .iter()
        .all(|r| r.detail != RunDetail::WallWatchdog));
}
