//! Regression tests for fault-corrupted addresses near `u32::MAX`.
//!
//! gpuFI-4 campaigns routinely flip pointer registers, so a corrupted base
//! plus a negative `Ld/St` offset can place the effective address at
//! `0xFFFFFFFC` or beyond.  The bounds checks in the shared- and
//! local-memory paths used to compute `addr + 4` in u32 — overflowing
//! (debug panic, journaled as `sim_panic`) or wrapping to 0 (release,
//! silently bypassing the check).  Each test below drives one of those
//! paths and asserts the run ends in the architecturally modelled trap —
//! a DUE, never a simulator panic — in both debug and release profiles
//! (CI runs this file under both).

use std::collections::BTreeMap;

use gpufi::prelude::*;
use gpufi_core::WorkloadError;
use gpufi_sim::AppStats;

fn small_gpu() -> Gpu {
    let mut cfg = GpuConfig::rtx2060();
    cfg.num_sms = 4;
    Gpu::new(cfg)
}

/// A golden profile whose contents are irrelevant: `classify` maps every
/// non-timeout error to Crash before consulting the golden run.
fn dummy_golden() -> GoldenProfile {
    GoldenProfile {
        output: Vec::new(),
        app: AppStats::default(),
        fault_spaces: BTreeMap::new(),
    }
}

/// Asserts the trap is journaled as a DUE (Crash) with an architectural
/// detail code, not as a simulator panic.
fn assert_due(trap: Trap, want: RunDetail) {
    let result: Result<Vec<u8>, WorkloadError> = Err(WorkloadError::Trap(trap));
    let detail = detail_of(&result);
    assert_eq!(detail, want, "trap must map to the architectural detail");
    assert_ne!(
        detail,
        RunDetail::SimPanic,
        "corrupted addresses must trap, not panic the simulator"
    );
    assert_eq!(classify(&result, 0, &dummy_golden()), FaultEffect::Crash);
}

/// Shared path: a bit flip clears the base register, so the negative
/// offset wraps the effective address to `0xFFFFFFFC`.  The old
/// `a + 4 > smem_len` check overflowed u32 there.
#[test]
fn corrupted_shared_base_traps_out_of_bounds() {
    let m = Module::assemble(
        r#"
.kernel smem_wild
.params 0
.smem 64
    MOV R7, 4
    LDS R8, [R7-8]
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    // Flip bit 2 of thread 0's R7 after the MOV issues at cycle 0 and
    // before the LDS reads it: 4 -> 0, so a = 0 - 8 + 4 = 0xFFFFFFFC.
    gpu.arm_faults(InjectionPlan::single(
        1,
        FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 0,
            reg: 7,
            bits: vec![2],
        },
    ));
    let err = gpu
        .launch(m.kernel("smem_wild").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap_err();
    assert!(gpu.injection_records()[0].applied);
    assert!(
        matches!(err, Trap::SmemOutOfBounds { offset } if offset >= 0xFFFF_FFF8),
        "expected a wrapped shared offset, got {err:?}"
    );
    assert_due(err, RunDetail::SmemOutOfBounds);
}

/// Local path: a corrupted base at `0xFFFFFFFC` used to wrap the
/// `base + 4 > lmem` check and then overflow the u32 effective-address
/// arithmetic `(tid_global * lmem) as u32 + base`.  The corrupted load is
/// predicated onto the *last* thread of a large grid so the wrap happens
/// at a big `tid_global * lmem` product, the worst case for the old
/// truncating arithmetic (low tids keep exercising the in-bounds path).
#[test]
fn corrupted_local_base_traps_out_of_bounds_on_large_grid() {
    let m = Module::assemble(
        r#"
.kernel lmem_wild
.params 1
.lmem 512
    S2R R2, SR_TID.X
    S2R R3, SR_CTAID.X
    S2R R4, SR_NTID.X
    IMAD R2, R3, R4, R2
    MOV R5, 0
    ISETP.LT P0, R2, R0
@P0 STL [R5], R2
@P0 EXIT
    MOV R6, 8
    LDL R7, [R6-12]
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let ctas = 64u32;
    let tpc = 32u32;
    let last = ctas * tpc - 1;
    let err = gpu
        .launch(
            m.kernel("lmem_wild").unwrap(),
            LaunchDims::new(ctas, tpc),
            &[last],
        )
        .unwrap_err();
    // base = 8 - 12 = 0xFFFFFFFC for tid 2047: aligned, far out of the
    // 512-byte allocation.
    assert!(
        matches!(err, Trap::LmemOutOfBounds { offset } if offset == 0xFFFF_FFFC),
        "expected a wrapped local offset, got {err:?}"
    );
    assert_due(err, RunDetail::LmemOutOfBounds);
}

/// Constant path: a bit flip makes the base odd.  The access must fault
/// as Misaligned — checked before the timing loop, mirroring the shared
/// path's order — and never reach a panic.
#[test]
fn corrupted_const_base_traps_misaligned() {
    let m = Module::assemble(
        r#"
.kernel const_mis
.params 0
    MOV R7, 4
    LDC R8, [R7]
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    gpu.arm_faults(InjectionPlan::single(
        1,
        FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 0,
            reg: 7,
            bits: vec![0],
        },
    ));
    let err = gpu
        .launch(m.kernel("const_mis").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap_err();
    assert!(gpu.injection_records()[0].applied);
    assert!(
        matches!(err, Trap::Misaligned { addr: 5 }),
        "expected a misaligned constant address, got {err:?}"
    );
    assert_due(err, RunDetail::Misaligned);
}
